// Package serve is the HTTP+JSON surface of the serving engine: the
// cscd daemon and the cyclehub.Engine.Handler facade both mount it. All
// handlers are safe under arbitrary concurrency — queries enter reader
// epochs, mutations go through the engine's mailbox.
//
// Routes:
//
//	GET    /cycle/{v}     SCCnt query for one vertex (?maxlen=L bounds
//	                      the answer to cycles of length ≤ L via the
//	                      bounded join kernel)
//	GET    /top           current top-k ranking (requires a watch)
//	POST   /edges         enqueue a batch of insertions
//	DELETE /edges         enqueue a batch of deletions
//	GET    /stats         engine counters + uptime
//	GET    /healthz       health: ok | degraded | overloaded
//
// Edge batches are {"edges": [[a,b], ...]}; add ?flush=1 to wait until
// the batch is applied (read-your-writes). Responses carry per-edge
// rejections for out-of-range or self-loop pairs; redundant ops are
// accepted and coalesced away by the engine.
//
// Every handler is bounded by its request context: a query or enqueue
// against a wedged writer returns when the client's deadline passes
// instead of holding the connection forever. Overload maps to 429 and
// read-only degradation to 503, both with Retry-After, so well-behaved
// clients back off instead of piling on. /healthz is liveness by
// default — it always answers 200 with a machine-readable status, since
// a degraded-but-serving process must not be restarted into a worse
// outage — and becomes a readiness probe with ?ready=1, answering 503
// for any non-ok status so load balancers drain the instance.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfscount"
	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/obs"
)

// CycleJSON is the /cycle/{v} response body.
type CycleJSON struct {
	Vertex int    `json:"vertex"`
	Exists bool   `json:"exists"`
	Length int    `json:"length,omitempty"`
	Count  uint64 `json:"count,omitempty"`
	// Stale marks an answer served by a replication follower that may not
	// have caught up to its primary's tip yet — a freshly promoted
	// follower keeps serving flagged answers until replay closes the gap.
	Stale bool `json:"stale,omitempty"`
}

// ErrorJSON is the machine-readable error body every non-2xx response
// carries: a human-readable message plus a stable code clients can
// switch on, and — on backpressure statuses (429/503) — the same
// retry-after the header advertises, so programmatic clients need not
// parse headers. The cluster router (internal/dist) serves the identical
// shape via WriteError.
type ErrorJSON struct {
	Error             string `json:"error"`
	Code              string `json:"code"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// Error codes shared by the daemon and the cluster router.
const (
	CodeBadVertex     = "bad_vertex"     // non-integer / out-of-range vertex id
	CodeBadMaxLen     = "bad_maxlen"     // malformed ?maxlen=
	CodeBadBody       = "bad_body"       // unparseable request body
	CodeNotFound      = "not_found"      // disabled surface (top without -k, metrics without registry)
	CodeOverloaded    = "overloaded"     // mailbox full under the reject admission policy
	CodeReadOnly      = "read_only"      // durability-lost read-only degraded mode
	CodeWriterTimeout = "writer_timeout" // request deadline passed waiting on the writer
	CodeNoReplica     = "no_replica"     // router: no reachable replica for the owning worker
	CodePromoted      = "promoted"       // follower: replication stream severed by promotion
)

// WriteError writes the uniform ErrorJSON body. retryAfter > 0 also sets
// the Retry-After header — 429/503 must always pass it so well-behaved
// clients back off instead of piling on.
func WriteError(w http.ResponseWriter, status int, code string, retryAfter int, format string, args ...any) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, ErrorJSON{
		Error:             fmt.Sprintf(format, args...),
		Code:              code,
		RetryAfterSeconds: retryAfter,
	})
}

// TopJSON is the /top response body.
type TopJSON struct {
	K   int         `json:"k"`
	Top []CycleJSON `json:"top"`
}

// EdgesRequest is the /edges request body.
type EdgesRequest struct {
	Edges [][2]int `json:"edges"`
}

// EdgeError is one rejected edge in an EdgesResponse.
type EdgeError struct {
	Edge  [2]int `json:"edge"`
	Error string `json:"error"`
}

// EdgesResponse is the /edges response body. On a 429/503 the ErrorJSON
// fields (error, code, retry_after_seconds) are set — the same
// machine-readable shape every other error response carries — and
// Enqueued counts the prefix that made it in before admission cut the
// batch off.
type EdgesResponse struct {
	Enqueued          int         `json:"enqueued"`
	Rejected          []EdgeError `json:"rejected,omitempty"`
	Flushed           bool        `json:"flushed,omitempty"`
	Error             string      `json:"error,omitempty"`
	Code              string      `json:"code,omitempty"`
	RetryAfterSeconds int         `json:"retry_after_seconds,omitempty"`
}

// HealthJSON is the /healthz response body.
type HealthJSON struct {
	// Status is ok, degraded (read-only durability loss or stale shards
	// pending an out-of-band rebuild), or overloaded (mailbox full).
	Status   string `json:"status"`
	ReadOnly bool   `json:"read_only,omitempty"`
	// DegradedShards lists the shard slots currently serving stale
	// answers, so degradation is attributable to specific shards rather
	// than a boolean.
	DegradedShards []int  `json:"degraded_shards,omitempty"`
	QueueDepth     int    `json:"queue_depth"`
	MailboxCap     int    `json:"mailbox_cap"`
	Err            string `json:"error,omitempty"`
}

// StatsJSON is the /stats response body.
type StatsJSON struct {
	engine.Stats
	TopK          int     `json:"top_k,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Handler mounts the serving API over an engine with default options.
// watch may be nil, in which case /top answers 404. k is only echoed in
// /stats.
func Handler(e *engine.Engine, watch *monitor.TopK, k int) http.Handler {
	return NewHandler(e, watch, k, Options{})
}

type server struct {
	e     *engine.Engine
	watch *monitor.TopK
	k     int
	start time.Time
	opts  Options

	// Observability state (obs.go): per-route latency histograms on the
	// engine's registry, the serialized access-log writer, and the
	// request-id generator.
	routeNS map[string]*obs.Histogram
	logMu   sync.Mutex
	slowOut io.Writer
	boot    string
	reqN    atomic.Uint64
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) cycle(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadVertex, 0, "vertex %q is not an integer", r.PathValue("v"))
		return
	}
	// Out-of-range ids (negative included) are malformed requests, not
	// missing resources: the vertex space is fixed and known, so 400 —
	// clients retrying a 404 as "not yet there" would spin forever.
	if v < 0 || v >= s.e.NumVertices() {
		WriteError(w, http.StatusBadRequest, CodeBadVertex, 0, "vertex %d out of range [0,%d)", v, s.e.NumVertices())
		return
	}
	var l int
	var c uint64
	if raw := r.URL.Query().Get("maxlen"); raw != "" {
		maxLen, perr := strconv.Atoi(raw)
		if perr != nil || maxLen < 1 {
			WriteError(w, http.StatusBadRequest, CodeBadMaxLen, 0, "maxlen %q is not a positive integer", raw)
			return
		}
		l, c, err = s.e.CycleCountBoundedCtx(r.Context(), v, maxLen)
	} else {
		l, c, err = s.e.CycleCountCtx(r.Context(), v)
	}
	if err != nil {
		WriteError(w, http.StatusServiceUnavailable, CodeWriterTimeout, 1, "query gave up waiting for the writer: %v", err)
		return
	}
	out := CycleJSON{Vertex: v}
	if l != bfscount.NoCycle {
		out.Exists = true
		out.Length = l
		out.Count = c
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) top(w http.ResponseWriter, r *http.Request) {
	if s.watch == nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, 0, "top-k watch not enabled (start with -k)")
		return
	}
	scores := s.watch.Top()
	out := TopJSON{K: s.k, Top: make([]CycleJSON, 0, len(scores))}
	for _, sc := range scores {
		out.Top = append(out.Top, CycleJSON{
			Vertex: sc.Vertex, Exists: true, Length: sc.Length, Count: sc.Count,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) edges(kind engine.OpKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req EdgesRequest
		// Bound the body so one hostile POST cannot buffer gigabytes into
		// the daemon; 16 MiB is ~1M edges per request, far beyond any sane
		// batch.
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadBody, 0, "bad body: %v", err)
			return
		}
		overloadResp := func(status int, code string, retryAfter int, resp EdgesResponse) {
			resp.Code = code
			resp.RetryAfterSeconds = retryAfter
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			writeJSON(w, status, resp)
		}
		var resp EdgesResponse
		for _, eg := range req.Edges {
			err := s.e.EnqueueEdgeCtx(r.Context(), kind, eg[0], eg[1])
			switch {
			case err == nil:
				resp.Enqueued++
			case errors.Is(err, engine.ErrOverloaded):
				// Writer saturated under the reject policy: cut the batch
				// off and tell the client to back off. Enqueued reports the
				// prefix that made it in.
				resp.Error = err.Error()
				overloadResp(http.StatusTooManyRequests, CodeOverloaded, 1, resp)
				return
			case errors.Is(err, engine.ErrReadOnly):
				resp.Error = err.Error()
				overloadResp(http.StatusServiceUnavailable, CodeReadOnly, 5, resp)
				return
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				// Block policy, mailbox full past the request's deadline.
				resp.Error = "writer saturated: " + err.Error()
				overloadResp(http.StatusServiceUnavailable, CodeWriterTimeout, 1, resp)
				return
			default:
				resp.Rejected = append(resp.Rejected, EdgeError{Edge: eg, Error: err.Error()})
			}
		}
		if flush, _ := strconv.ParseBool(r.URL.Query().Get("flush")); flush {
			s.e.Flush()
			resp.Flushed = true
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// ShardTableJSON is the GET /cluster/shards response: the vertex→shard
// table plus per-shard footprint stats — everything a cluster
// coordinator needs to compute a size-balanced placement and everything
// a router needs to route reads (internal/dist fetches this at boot).
type ShardTableJSON struct {
	Vertices int         `json:"vertices"`
	Seq      uint64      `json:"seq"`
	ShardOf  []int32     `json:"shard_of"` // per vertex; -1 = trivial (answers zero cycles locally)
	Shards   []ShardJSON `json:"shards"`
}

// ShardJSON is one live shard's footprint in a ShardTableJSON.
type ShardJSON struct {
	Slot       int  `json:"slot"`
	Vertices   int  `json:"vertices"`
	Entries    int  `json:"entries"`
	LabelBytes int  `json:"label_bytes"`
	Stale      bool `json:"stale,omitempty"`
}

func (s *server) clusterShards(w http.ResponseWriter, r *http.Request) {
	shardOf, stats, ok := s.e.ShardTable()
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, 0, "index is not sharded (no shard table to place)")
		return
	}
	out := ShardTableJSON{
		Vertices: len(shardOf),
		Seq:      s.e.Seq(),
		ShardOf:  shardOf,
		Shards:   make([]ShardJSON, 0, len(stats)),
	}
	for _, st := range stats {
		out.Shards = append(out.Shards, ShardJSON{
			Slot:       st.Slot,
			Vertices:   st.Vertices,
			Entries:    st.Entries,
			LabelBytes: st.LabelBytes,
			Stale:      st.Stale,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsJSON{
		Stats:         s.e.Stats(),
		TopK:          s.k,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	st := s.e.Stats()
	h := HealthJSON{
		Status:         "ok",
		ReadOnly:       st.ReadOnly,
		DegradedShards: st.Degraded,
		QueueDepth:     st.QueueDepth,
		MailboxCap:     st.MailboxCap,
		Err:            st.Err,
	}
	switch {
	case st.ReadOnly || st.Err != "" || len(st.Degraded) > 0:
		h.Status = "degraded"
	case st.QueueDepth >= st.MailboxCap:
		h.Status = "overloaded"
	}
	code := http.StatusOK
	if ready, _ := strconv.ParseBool(r.URL.Query().Get("ready")); ready && h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
