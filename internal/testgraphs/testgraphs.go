// Package testgraphs holds small fixed graphs used as regression fixtures
// across the test suites — most importantly the paper's Figure 2 graph,
// whose hub labels (Table II), bipartite labels (Table III) and worked
// Examples 1-6 pin down the exact semantics of every algorithm.
package testgraphs

import "repro/internal/graph"

// Figure2Edges returns the zero-based edge list of the paper's Figure 2
// graph (paper vertex v1 is vertex 0 here). The list was reconstructed
// from the shortest distances in Table II and is validated against all of
// the paper's worked examples by the labeling tests:
//
//	v1→v3 v1→v4 v1→v5 v3→v6 v4→v7 v5→v7 v6→v7
//	v7→v8 v8→v9 v9→v10 v10→v1 v10→v2 v2→v4
//
// With degree ordering and id tie-breaks this yields exactly Example 4's
// rank: v1 ≺ v7 ≺ v4 ≺ v10 ≺ v2 ≺ v3 ≺ v5 ≺ v6 ≺ v8 ≺ v9.
func Figure2Edges() [][2]int {
	return [][2]int{
		{0, 2}, {0, 3}, {0, 4},
		{2, 5},
		{3, 6}, {4, 6}, {5, 6},
		{6, 7}, {7, 8}, {8, 9},
		{9, 0}, {9, 1},
		{1, 3},
	}
}

// Figure2 builds the Figure 2 graph (10 vertices, 13 edges).
func Figure2() *graph.Digraph {
	g, err := graph.FromEdges(10, Figure2Edges())
	if err != nil {
		panic(err) // fixed, known-good input
	}
	return g
}

// Figure6Base builds the 14-vertex graph sketched in Figure 6(a) of the
// incremental-update example: a grey high-rank root whose BFS tree the
// inserted edge of Figure 6(b) reshapes. The exact topology in the paper
// is only partially specified, so this is a faithful small analog: a root
// with two branches whose distances drop when a shortcut edge arrives.
func Figure6Base() (*graph.Digraph, [2]int) {
	g := graph.New(8)
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, // long chain
		{0, 5}, {5, 6}, {6, 7}, // side branch
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	// The insertion (5 -> 3) creates the shortcut of Figure 6(b).
	return g, [2]int{5, 3}
}

// Triangle returns the smallest graph with a cycle: 0→1→2→0.
func Triangle() *graph.Digraph {
	g, err := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		panic(err)
	}
	return g
}

// TwoCycle returns a reciprocal edge pair 0⇄1 (a length-2 directed cycle).
func TwoCycle() *graph.Digraph {
	g, err := graph.FromEdges(2, [][2]int{{0, 1}, {1, 0}})
	if err != nil {
		panic(err)
	}
	return g
}

// DiamondCycles returns a graph where vertex 0 lies on two distinct
// shortest cycles of length 3: 0→1→3→0 and 0→2→3→0.
func DiamondCycles() *graph.Digraph {
	g, err := graph.FromEdges(4, [][2]int{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0},
	})
	if err != nil {
		panic(err)
	}
	return g
}

// DAG returns an acyclic graph (no vertex has any cycle).
func DAG() *graph.Digraph {
	g, err := graph.FromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5},
	})
	if err != nil {
		panic(err)
	}
	return g
}
