// Package conform is the oracle-backed conformance runner for the CSC
// index implementations: for any graph it cross-checks the SCC-sharded
// index, the monolithic index, and the BFS-CYCLE oracle (Algorithm 1) on
// every vertex, plus the sharded serialization roundtrip. It lives in a
// subpackage of testgraphs so the corpus stays importable from packages
// the runner itself depends on (bfscount, csc).
package conform

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/testgraphs"
)

// Graph cross-checks one graph: sharded vs monolithic vs oracle CycleCount
// on every vertex, and a v2 serialization roundtrip of the sharded form.
// The input graph is not mutated.
func Graph(t testing.TB, name string, g *graph.Digraph) {
	t.Helper()
	oracleL, oracleC := bfscount.AllCycleCounts(g)
	mono, _ := csc.Build(g.Clone(), order.ByDegree(g), csc.Options{})
	shard, _ := csc.BuildSharded(g.Clone(), csc.Options{})
	for v := 0; v < g.NumVertices(); v++ {
		ml, mc := mono.CycleCount(v)
		sl, sc := shard.CycleCount(v)
		if ml != oracleL[v] || mc != oracleC[v] {
			t.Fatalf("%s: vertex %d monolithic (%d,%d) != oracle (%d,%d)", name, v, ml, mc, oracleL[v], oracleC[v])
		}
		if sl != oracleL[v] || sc != oracleC[v] {
			t.Fatalf("%s: vertex %d sharded (%d,%d) != oracle (%d,%d)", name, v, sl, sc, oracleL[v], oracleC[v])
		}
	}
	// The sharded form must never store more label entries than the
	// monolithic one — cross-component labels are exactly what it elides.
	if shard.EntryCount() > mono.EntryCount() {
		t.Fatalf("%s: sharded %d entries > monolithic %d", name, shard.EntryCount(), mono.EntryCount())
	}
	var buf bytes.Buffer
	if _, err := shard.WriteTo(&buf); err != nil {
		t.Fatalf("%s: serialize: %v", name, err)
	}
	loaded, err := csc.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%s: deserialize: %v", name, err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		ll, lc := loaded.CycleCount(v)
		if ll != oracleL[v] || lc != oracleC[v] {
			t.Fatalf("%s: vertex %d loaded (%d,%d) != oracle (%d,%d)", name, v, ll, lc, oracleL[v], oracleC[v])
		}
	}
}

// Corpus runs Graph over every testgraphs corpus entry.
func Corpus(t *testing.T) {
	for _, ng := range testgraphs.Corpus() {
		ng := ng
		t.Run(ng.Name, func(t *testing.T) {
			t.Parallel()
			Graph(t, ng.Name, ng.G)
		})
	}
}

// OrderInvariance is the metamorphic check behind the pluggable-order
// machinery: the hub order is a performance lever, never a semantic one,
// so the cycle counts under ANY valid total order must equal the BFS
// oracle. It builds the sharded index under every ordering strategy and
// the monolithic index under seeded random permutations (arbitrary valid
// total orders, not just ones a strategy would produce), cross-checking
// every vertex. The input graph is not mutated.
func OrderInvariance(t testing.TB, name string, g *graph.Digraph) {
	t.Helper()
	oracleL, oracleC := bfscount.AllCycleCounts(g)
	check := func(tag string, x csc.Counter) {
		t.Helper()
		for v := 0; v < g.NumVertices(); v++ {
			l, c := x.CycleCount(v)
			if l != oracleL[v] || c != oracleC[v] {
				t.Fatalf("%s/%s: vertex %d got (%d,%d), oracle (%d,%d)", name, tag, v, l, c, oracleL[v], oracleC[v])
			}
		}
	}
	for s := order.Degree; s.Valid(); s++ {
		x, _ := csc.BuildSharded(g.Clone(), csc.Options{Order: s, OrderSeed: 3})
		check(s.String(), x)
	}
	for _, seed := range []int64{1, 17, 400} {
		x, _ := csc.Build(g.Clone(), order.ByRandom(g.NumVertices(), seed), csc.Options{})
		check(fmt.Sprintf("perm-%d", seed), x)
	}
}
