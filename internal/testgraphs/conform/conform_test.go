package conform

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/testgraphs"
)

// TestCorpusConformance is the conformance suite: sharded vs monolithic
// vs BFS oracle on every vertex of every corpus graph, plus sharded
// serialization roundtrips.
func TestCorpusConformance(t *testing.T) {
	Corpus(t)
}

// TestOrderInvariance is the order-invariance metamorphic suite: every
// ordering strategy plus seeded random permutations must reproduce the
// BFS oracle's counts on every corpus graph — the hub order can only
// move label bytes, never answers.
func TestOrderInvariance(t *testing.T) {
	for _, ng := range testgraphs.Corpus() {
		ng := ng
		t.Run(ng.Name, func(t *testing.T) {
			t.Parallel()
			OrderInvariance(t, ng.Name, ng.G)
		})
	}
}

// The corpus families must actually have the partition shapes they claim,
// or the conformance suite stops covering what it says it covers.
func TestFamilyShapes(t *testing.T) {
	dag := testgraphs.DAGHeavy(300, 900, 5, 11)
	p := partition.SCC(dag)
	nt := p.NonTrivial()
	if len(nt) != 5 {
		t.Fatalf("DAGHeavy: %d non-trivial comps, want 5 planted rings", len(nt))
	}
	cyclic := 0
	for _, c := range nt {
		cyclic += len(c)
	}
	if cyclic > dag.NumVertices()/10 {
		t.Fatalf("DAGHeavy: %d of %d vertices cyclic — not DAG-heavy", cyclic, dag.NumVertices())
	}

	giant := testgraphs.GiantSCC(200, 700, 31)
	if nt := partition.SCC(giant).NonTrivial(); len(nt) != 1 || len(nt[0]) != 200 {
		t.Fatalf("GiantSCC: not a single giant component: %d comps", len(nt))
	}

	many := testgraphs.ManySmallSCC(25, 5, 60, 51)
	nt = partition.SCC(many).NonTrivial()
	if len(nt) != 25 {
		t.Fatalf("ManySmallSCC: %d non-trivial comps, want 25 rings", len(nt))
	}
	for _, c := range nt {
		if len(c) != 5 {
			t.Fatalf("ManySmallSCC: ring of size %d, want 5", len(c))
		}
	}
}

// Random graphs beyond the fixed corpus keep the runner honest.
func TestRandomGraphConformance(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		n := 10 + r.Intn(40)
		g := graph.New(n)
		m := r.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		Graph(t, "random", g)
	}
}
