package testgraphs

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// The corpus families below stress the SCC-sharded index from three
// directions: graphs that are almost entirely acyclic (sharding should
// skip nearly everything), graphs that are one giant component (sharding
// should degrade to the monolithic build plus a Tarjan pass), and graphs
// made of many small components linked by a DAG (sharding should produce
// many independent sub-indexes). All generators are pure functions of
// their parameters and seed.

// DAGHeavy builds a mostly acyclic graph: m random forward edges under a
// hidden topological order, plus `cycles` small planted directed rings
// (length 3-5) on disjoint vertex groups. The overwhelming share of
// vertices ends up in trivial SCCs.
func DAGHeavy(n, m, cycles int, seed int64) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	perm := r.Perm(n) // hidden topological order: edges go perm[i] → perm[j], i<j
	// Plant rings on the first vertices of the hidden order so ring
	// back-edges stay inside their group.
	next := 0
	for c := 0; c < cycles && next+5 <= n; c++ {
		ringLen := 3 + r.Intn(3)
		for k := 0; k < ringLen; k++ {
			u := perm[next+k]
			v := perm[next+(k+1)%ringLen]
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		next += ringLen
	}
	attempts := 0
	for g.NumEdges() < m && attempts < 20*m {
		attempts++
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i // forward in the hidden order: never creates a cycle
		}
		_ = g.AddEdge(perm[i], perm[j])
	}
	return g
}

// GiantSCC builds a graph that is one strongly connected component: a
// Hamiltonian ring through every vertex plus m-n random chords.
func GiantSCC(n, m int, seed int64) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 0; v < n; v++ {
		_ = g.AddEdge(v, (v+1)%n)
	}
	attempts := 0
	for g.NumEdges() < m && attempts < 20*m {
		attempts++
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// ManySmallSCC builds `rings` directed rings of `ringLen` vertices each,
// linked by `bridges` random cross-ring edges that only ever point from a
// lower-indexed ring to a higher-indexed one — so the rings stay separate
// components and the bridges form a DAG over them.
func ManySmallSCC(rings, ringLen, bridges int, seed int64) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	n := rings * ringLen
	g := graph.New(n)
	for k := 0; k < rings; k++ {
		base := k * ringLen
		for i := 0; i < ringLen; i++ {
			_ = g.AddEdge(base+i, base+(i+1)%ringLen)
		}
	}
	attempts := 0
	added := 0
	for added < bridges && attempts < 20*bridges {
		attempts++
		k1, k2 := r.Intn(rings), r.Intn(rings)
		if k1 == k2 {
			continue
		}
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		u := k1*ringLen + r.Intn(ringLen)
		v := k2*ringLen + r.Intn(ringLen)
		if g.AddEdge(u, v) == nil {
			added++
		}
	}
	return g
}

// Torus builds the directed rows×cols grid torus: every vertex has an
// edge to its right and its down neighbor, both dimensions wrapping — one
// strongly connected component where every vertex has in- and out-degree
// 2. The uniform degree makes it the adversarial case for degree-based
// hub ordering (all ties, so the order degenerates to vertex id, which is
// row-major — the worst shape for a grid), while structure-aware
// strategies can still find genuinely covering hubs.
func Torus(rows, cols int) *graph.Digraph {
	g := graph.New(rows * cols)
	id := func(i, j int) int { return ((i+rows)%rows)*cols + (j+cols)%cols }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			_ = g.AddEdge(id(i, j), id(i, j+1))
			_ = g.AddEdge(id(i, j), id(i+1, j))
		}
	}
	return g
}

// NamedGraph is one corpus entry.
type NamedGraph struct {
	Name string
	G    *graph.Digraph
}

// Corpus returns the conformance corpus: the fixed paper fixtures plus
// seeded instances of the three partition-stress families at two sizes
// each. Every graph is deterministic, so failures reproduce by name.
func Corpus() []NamedGraph {
	out := []NamedGraph{
		{"figure2", Figure2()},
		{"triangle", Triangle()},
		{"two-cycle", TwoCycle()},
		{"diamond", DiamondCycles()},
		{"dag", DAG()},
	}
	out = append(out,
		NamedGraph{"torus-small", Torus(4, 5)},
		NamedGraph{"torus-large", Torus(7, 8)},
	)
	for i, seed := range []int64{1, 2} {
		out = append(out,
			NamedGraph{fmt.Sprintf("dag-heavy-small-%d", i), DAGHeavy(60, 150, 2, seed)},
			NamedGraph{fmt.Sprintf("dag-heavy-large-%d", i), DAGHeavy(300, 900, 5, 10+seed)},
			NamedGraph{fmt.Sprintf("giant-scc-small-%d", i), GiantSCC(40, 120, 20+seed)},
			NamedGraph{fmt.Sprintf("giant-scc-large-%d", i), GiantSCC(200, 700, 30+seed)},
			NamedGraph{fmt.Sprintf("many-scc-small-%d", i), ManySmallSCC(6, 4, 10, 40+seed)},
			NamedGraph{fmt.Sprintf("many-scc-large-%d", i), ManySmallSCC(25, 5, 60, 50+seed)},
		)
	}
	return out
}
