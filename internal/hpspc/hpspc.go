// Package hpspc implements the HP-SPC baseline (§III-A): the hub labeling
// for shortest path counting of Zhang & Yu (SIGMOD'20) built directly on
// the original graph, with shortest cycle counting answered through the
// neighbor reduction of Equations (3)-(4) — SCCnt(v) is evaluated as the
// sum of SPCnt over the smaller side of v's neighborhood, which makes the
// query cost grow with min(|nbr_in(v)|, |nbr_out(v)|). That degree
// dependence is exactly what the CSC index removes.
package hpspc

import (
	"repro/internal/bfscount"
	"repro/internal/bitpack"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pll"
)

// Index is an HP-SPC shortest-path-counting index over a directed graph.
type Index struct {
	idx *pll.Index
}

// Build constructs the index with every vertex as a hub, using every core
// (construction is byte-deterministic regardless of worker count).
func Build(g *graph.Digraph, ord *order.Order, strategy pll.Strategy) (*Index, pll.BuildStats) {
	return BuildWorkers(g, ord, strategy, 0)
}

// BuildWorkers is Build with explicit construction parallelism (0 = all
// cores, 1 = sequential).
func BuildWorkers(g *graph.Digraph, ord *order.Order, strategy pll.Strategy, workers int) (*Index, pll.BuildStats) {
	idx, st := pll.Build(g, ord, pll.Options{Strategy: strategy, Workers: workers})
	return &Index{idx: idx}, st
}

// Graph returns the underlying (live) graph.
func (h *Index) Graph() *graph.Digraph { return h.idx.G }

// Engine exposes the underlying label engine (stats, serialization).
func (h *Index) Engine() *pll.Index { return h.idx }

// CountPaths answers SPCnt(s,t) with the shortest distance, or
// (pll.Unreachable, 0) when no path exists.
func (h *Index) CountPaths(s, t int) (dist int, count uint64) {
	return h.idx.CountPaths(s, t)
}

// CycleCount answers SCCnt(v) by the neighbor reduction (Equations 3-4):
// it scans the smaller of v's neighbor sides, evaluates one SPCnt per
// neighbor, keeps the minimum distance and sums the counts. The returned
// length is the cycle length in G (the neighbor distance plus one), or
// bfscount.NoCycle when v lies on no cycle.
func (h *Index) CycleCount(v int) (length int, count uint64) {
	g := h.idx.G
	bestD := -1
	var total uint64
	if g.OutDegree(v) < g.InDegree(v) || g.InDegree(v) == 0 {
		// Cycle = edge (v,w) + shortest path w→v over each out-neighbor w.
		for _, w := range g.Out(v) {
			d, c := h.idx.CountPaths(int(w), v)
			if d == pll.Unreachable {
				continue
			}
			bestD, total = fold(bestD, total, d, c)
		}
	} else {
		// Cycle = shortest path v→w + edge (w,v) over each in-neighbor w.
		for _, w := range g.In(v) {
			d, c := h.idx.CountPaths(v, int(w))
			if d == pll.Unreachable {
				continue
			}
			bestD, total = fold(bestD, total, d, c)
		}
	}
	if bestD < 0 {
		return bfscount.NoCycle, 0
	}
	return bestD + 1, total
}

func fold(bestD int, total uint64, d int, c uint64) (int, uint64) {
	switch {
	case bestD == -1 || d < bestD:
		return d, c
	case d == bestD:
		return bestD, bitpack.SatAdd(total, c)
	}
	return bestD, total
}

// InsertEdge maintains the index for an edge insertion (INCCNT).
func (h *Index) InsertEdge(a, b int) (pll.UpdateStats, error) {
	return h.idx.InsertEdge(a, b)
}

// DeleteEdge maintains the index for an edge deletion.
func (h *Index) DeleteEdge(a, b int) (pll.UpdateStats, error) {
	return h.idx.DeleteEdge(a, b)
}

// EntryCount returns the total number of label entries.
func (h *Index) EntryCount() int { return h.idx.EntryCount() }

// Bytes returns the label storage footprint.
func (h *Index) Bytes() int { return h.idx.Bytes() }
