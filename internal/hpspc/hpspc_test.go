package hpspc

import (
	"math/rand"
	"testing"

	"repro/internal/bfscount"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pll"
	"repro/internal/testgraphs"
)

func buildFig2(t testing.TB) *Index {
	t.Helper()
	g := testgraphs.Figure2()
	h, _ := Build(g, order.ByDegree(g), pll.Redundancy)
	return h
}

func TestPaperExample3(t *testing.T) {
	h := buildFig2(t)
	// Example 3: SCCnt(v7) via in-neighbors {v4,v5,v6} = 2+1 = 3, length 6.
	l, c := h.CycleCount(6)
	if l != 6 || c != 3 {
		t.Fatalf("SCCnt(v7) = (%d,%d), want (6,3)", l, c)
	}
}

func TestSelfPairReturnsZeroDistance(t *testing.T) {
	// §III-A motivation: SPCnt(v,v) degenerates to the empty path, so a
	// plain self query cannot answer cycle counting.
	h := buildFig2(t)
	d, c := h.CountPaths(0, 0)
	if d != 0 || c != 1 {
		t.Fatalf("SPCnt(v1,v1) = (%d,%d), want (0,1)", d, c)
	}
}

func TestCycleCountMatchesBFSOnFixtures(t *testing.T) {
	for _, g := range []*graph.Digraph{
		testgraphs.Figure2(),
		testgraphs.Triangle(),
		testgraphs.TwoCycle(),
		testgraphs.DiamondCycles(),
		testgraphs.DAG(),
	} {
		h, _ := Build(g.Clone(), order.ByDegree(g), pll.Redundancy)
		for v := 0; v < g.NumVertices(); v++ {
			wl, wc := bfscount.CycleCount(g, v)
			gl, gc := h.CycleCount(v)
			if gl != wl || gc != wc {
				t.Fatalf("SCCnt(%d) = (%d,%d), want (%d,%d)", v, gl, gc, wl, wc)
			}
		}
	}
}

func TestCycleCountMatchesBFSRandomWithUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 16
	g := graph.New(n)
	for i := 0; i < n*2; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	h, _ := Build(g, order.ByDegree(g), pll.Redundancy)
	check := func(ctx string) {
		t.Helper()
		for v := 0; v < n; v++ {
			wl, wc := bfscount.CycleCount(g, v)
			gl, gc := h.CycleCount(v)
			if gl != wl || gc != wc {
				t.Fatalf("%s: SCCnt(%d) = (%d,%d), want (%d,%d)", ctx, v, gl, gc, wl, wc)
			}
		}
	}
	check("build")
	for k := 0; k < 40; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if _, err := h.DeleteEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := h.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		check("update")
	}
}

func TestStatsExposed(t *testing.T) {
	h := buildFig2(t)
	if h.EntryCount() == 0 || h.Bytes() != 8*h.EntryCount() {
		t.Fatalf("stats: %d entries, %d bytes", h.EntryCount(), h.Bytes())
	}
	if h.Graph().NumVertices() != 10 {
		t.Fatal("graph accessor broken")
	}
	if h.Engine() == nil {
		t.Fatal("engine accessor broken")
	}
}
