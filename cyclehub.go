// Package cyclehub counts shortest cycles through vertices of dynamic
// directed graphs in real time. It implements the CSC index of Feng, Peng,
// Zhang, Zhang and Lin, "Towards Real-Time Counting Shortest Cycles on
// Dynamic Graphs: A Hub Labeling Approach" (ICDE 2022): the graph is
// reshaped by a bipartite conversion, a 2-hop counting label is built over
// the conversion, and SCCnt(v) — the number of shortest cycles through v —
// is answered with a single merge-join of two label lists in microseconds,
// independent of v's degree. Edge insertions and deletions maintain the
// index incrementally instead of rebuilding it.
//
// Indexes are SCC-sharded by default: every directed cycle lies inside
// one strongly connected component, so BuildIndex partitions the graph by
// condensation, leaves the acyclic share completely label-free, builds
// independent sub-indexes per component (in parallel across components),
// and routes queries through a vertex→shard table. Updates that merge or
// split components trigger scoped rebuilds of only the affected shards;
// WithMonolithic restores the single whole-graph labeling.
//
// Construction uses every core by default (see WithWorkers): hub BFSes
// run speculatively in rank-ordered batches and merge deterministically,
// so the labels are byte-identical to a sequential build. Pruning inside
// each BFS probes a rank-indexed scatter of the hub's own label instead
// of merge-joining two lists per visited vertex. The finished labels are
// frozen into a single contiguous CSR arena with a small mutable tail per
// vertex, so queries walk sequential memory and later edge updates keep
// working without a rebuild.
//
// # Quick start
//
//	g := cyclehub.NewGraph(4)
//	g.AddEdge(0, 1); g.AddEdge(1, 2); g.AddEdge(2, 0); g.AddEdge(2, 3)
//	idx := cyclehub.BuildIndex(g)
//	r := idx.CycleCount(0) // {Exists: true, Length: 3, Count: 1}
//	idx.InsertEdge(3, 0)   // index maintained, no rebuild
//	r = idx.CycleCount(3)  // now on the 4-cycle 3→0→1→2→3
//
// The BuildIndex call takes ownership of the graph: after it returns,
// mutate the graph only through Index.InsertEdge and Index.DeleteEdge.
package cyclehub

import (
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/bfscount"
	"repro/internal/csc"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/pll"
	"repro/internal/serve"
)

// Graph is a mutable directed graph over dense vertex ids 0..n-1.
// It rejects self-loops and parallel edges.
type Graph = graph.Digraph

// NewGraph returns an empty directed graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromEdges builds a graph from an edge list.
func GraphFromEdges(n int, edges [][2]int) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// ReadGraph parses the plain "n m" + "u v" edge-list format (comments
// start with '#'); self-loops and duplicate edges in the input are
// silently skipped.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// CycleResult is the answer to a shortest-cycle-counting query.
type CycleResult struct {
	// Exists reports whether any directed cycle passes through the vertex.
	Exists bool
	// Length is the number of edges on the shortest cycles (≥ 2).
	Length int
	// Count is the number of distinct shortest cycles. Counts saturate at
	// 2²⁴−1, the width of the index's packed count field.
	Count uint64
}

// Option configures BuildIndex.
type Option func(*buildConfig)

type buildConfig struct {
	opts       csc.Options
	monolithic bool
}

// WithMinimality keeps the label minimal after every update (Theorem V.3)
// at a substantial update-time cost. The default — leaving dominated
// entries in place ("redundancy") — is what the paper recommends: queries
// stay exact either way.
func WithMinimality() Option {
	return func(c *buildConfig) { c.opts.Strategy = pll.Minimality }
}

// WithWorkers sets how many goroutines construction uses. The default (0)
// uses every core; 1 forces the sequential builder. Hubs are processed in
// rank-ordered batches whose results merge deterministically, so the
// built labels are byte-identical for every worker count — parallelism is
// purely a wall-clock knob.
func WithWorkers(n int) Option {
	return func(c *buildConfig) { c.opts.Workers = n }
}

// WithMonolithic builds one labeling over the whole graph instead of the
// default SCC-sharded index. Queries and updates answer identically; the
// monolithic form exists for ablation benchmarks and cross-checks, and is
// what pre-sharding index files deserialize into.
func WithMonolithic() Option {
	return func(c *buildConfig) { c.monolithic = true }
}

// WithCompression stores the labels in the frozen delta+varint arena
// instead of the mutable 8-byte-entry form: hubs are rank-sorted, so
// consecutive gaps encode in one or two bytes, and each list carries a
// bloom signature of its hub set that screens non-intersecting joins
// before any entry decodes. Answers are byte-identical to the
// uncompressed form; edge updates thaw only the touched lists and the
// serving engine re-freezes them on the next quiet moment. A compressed
// sharded index serializes as the mmap-able v3 format (see
// ReadIndexFile).
func WithCompression() Option {
	return func(c *buildConfig) { c.opts.CompressLabels = true }
}

// Ordering names a hub-ordering strategy: the total order construction
// ranks vertices by, which decides which vertices become hubs first and
// thereby the label size/build time the index ends up with. Answers are
// identical under every valid ordering (asserted by the order-invariance
// suite); the ordering is purely a quality knob.
type Ordering = order.Strategy

// Hub-ordering strategies for WithOrdering. Degree is the paper's
// recommendation and the default; Betweenness ranks by sampled-BFS
// betweenness (shortest-path load); Coverage greedily ranks by how many
// sampled shortest paths a vertex covers that higher ranks don't. On
// skewed-degree graphs degree is hard to beat; on uniform-degree graphs
// (meshes, rings) it degenerates to id order and the sampled strategies
// cut label bytes substantially (see EXPERIMENTS.md, ORD-*).
const (
	OrderDegree      = order.Degree
	OrderID          = order.ID
	OrderRandom      = order.Random
	OrderBetweenness = order.Betweenness
	OrderCoverage    = order.Coverage
)

// ParseOrdering maps a flag string (degree | id | random | betweenness |
// coverage) to a strategy.
func ParseOrdering(s string) (Ordering, error) { return order.ParseStrategy(s) }

// WithOrdering selects the hub-ordering strategy construction and every
// scoped rebuild use (default OrderDegree). A sharded index computes the
// order per component; a non-degree choice serializes as the v4 format,
// which records the strategy globally and per shard.
func WithOrdering(s Ordering) Option {
	return func(c *buildConfig) { c.opts.Order = s }
}

// WithOrderingSeed seeds the sampling strategies (OrderBetweenness,
// OrderCoverage, OrderRandom). The order is a pure function of (graph,
// strategy, seed), so a fixed seed makes repeated builds byte-identical.
func WithOrderingSeed(seed int64) Option {
	return func(c *buildConfig) { c.opts.OrderSeed = seed }
}

// Index answers CycleCount queries on a dynamic directed graph.
type Index struct {
	x csc.Counter
}

// BuildIndex constructs a CSC index over g using the paper's degree
// ordering (see WithOrdering for the alternatives). The index takes
// ownership of g.
//
// By default the graph is partitioned by condensation: every directed
// cycle lies inside one strongly connected component, so trivial
// components carry no labels at all and each non-trivial component gets
// an independent sub-index (built in parallel across components). On
// DAG-heavy graphs this cuts construction time and label bytes by the
// share of the graph outside cyclic regions. WithMonolithic restores the
// single whole-graph labeling.
func BuildIndex(g *Graph, options ...Option) *Index {
	var cfg buildConfig
	for _, o := range options {
		o(&cfg)
	}
	if cfg.monolithic {
		ord, err := order.Compute(g, cfg.opts.Order, cfg.opts.OrderSeed)
		if err != nil {
			ord = order.ByDegree(g)
		}
		x, _ := csc.Build(g, ord, cfg.opts)
		return &Index{x: x}
	}
	x, _ := csc.BuildSharded(g, cfg.opts)
	return &Index{x: x}
}

// CycleCount answers SCCnt(v): the length and number of the shortest
// cycles through v.
func (ix *Index) CycleCount(v int) CycleResult {
	l, c := ix.x.CycleCount(v)
	if l == bfscount.NoCycle {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: l, Count: c}
}

// CycleCountBounded answers SCCnt(v) only when the shortest cycles
// through v have length ≤ maxLen, and reports no cycle otherwise. The
// bounded join kernel skips all counting work for cycles past the bound,
// so screening queries ("is v on a short feedback loop?") cost less than
// a full CycleCount.
func (ix *Index) CycleCountBounded(v, maxLen int) CycleResult {
	l, c := ix.x.CycleCountBounded(v, maxLen)
	if l == bfscount.NoCycle {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: l, Count: c}
}

// InsertEdge adds edge (a,b) to the graph and maintains the index.
func (ix *Index) InsertEdge(a, b int) error {
	_, err := ix.x.InsertEdge(a, b)
	return err
}

// DeleteEdge removes edge (a,b) from the graph and maintains the index.
func (ix *Index) DeleteEdge(a, b int) error {
	_, err := ix.x.DeleteEdge(a, b)
	return err
}

// EdgeOp is one operation of a batch update: an insertion by default, a
// deletion when Delete is set.
type EdgeOp struct {
	Delete bool
	A, B   int
}

// ApplyBatch applies an ordered sequence of edge operations as one
// maintenance unit, equivalent to (but usually much faster than) applying
// them through InsertEdge/DeleteEdge one at a time: the default sharded
// index groups the batch's ops by strongly connected component, computes
// merge/split effects once for the whole batch, and applies independent
// per-shard update streams on workers goroutines (0 = all cores, 1 =
// sequential; answers are identical for every worker count). The batch
// must be a valid sequence against the live graph — no duplicate inserts,
// no missing deletes, net of earlier ops in the same batch — and an
// invalid batch is rejected whole, with nothing applied.
func (ix *Index) ApplyBatch(ops []EdgeOp, workers int) error {
	batch := make([]csc.EdgeOp, len(ops))
	for i, op := range ops {
		if op.A < 0 || op.A > 1<<31-1 || op.B < 0 || op.B > 1<<31-1 {
			return graph.ErrVertexRange
		}
		k := csc.OpInsert
		if op.Delete {
			k = csc.OpDelete
		}
		batch[i] = csc.EdgeOp{Kind: k, A: int32(op.A), B: int32(op.B)}
	}
	_, err := ix.x.ApplyBatch(batch, workers)
	return err
}

// AddVertex grows the graph by one isolated vertex and returns its id.
// Vertex ids are dense and never recycled.
func (ix *Index) AddVertex() (int, error) { return ix.x.AddVertex() }

// DetachVertex removes all edges incident to v through maintained
// deletions, leaving v isolated — the paper's model of vertex removal.
// It returns the number of edges removed.
func (ix *Index) DetachVertex(v int) (int, error) { return ix.x.DetachVertex(v) }

// Graph returns the indexed graph. Do not mutate it directly; use
// InsertEdge and DeleteEdge so the index stays consistent.
func (ix *Index) Graph() *Graph { return ix.x.Graph() }

// CycleCountAll evaluates SCCnt for every vertex using the given number
// of worker goroutines (0 uses every core, 1 forces sequential; the count
// is clamped to the vertex count so tiny graphs never spawn idle
// goroutines). Queries are read-only, so this is safe as long as no
// update runs concurrently.
func (ix *Index) CycleCountAll(workers int) []CycleResult {
	lengths, counts := ix.x.CycleCountAll(workers)
	out := make([]CycleResult, len(lengths))
	for v := range out {
		if lengths[v] != bfscount.NoCycle {
			out[v] = CycleResult{Exists: true, Length: lengths[v], Count: counts[v]}
		}
	}
	return out
}

// Stats describes an index's size.
type Stats struct {
	// Entries is the number of 64-bit label entries in the full labeling.
	Entries int
	// Bytes is the full label footprint (8 bytes per entry).
	Bytes int
	// ReducedBytes is the footprint after couple-pair label merging
	// (§IV-E), the size a static deployment would store.
	ReducedBytes int
}

// Stats reports the index's current size.
func (ix *Index) Stats() Stats {
	return Stats{
		Entries:      ix.x.EntryCount(),
		Bytes:        ix.x.Bytes(),
		ReducedBytes: ix.x.ReducedBytes(),
	}
}

// WriteTo serializes the index; it implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.x.WriteTo(w) }

// ReadIndex loads an index serialized with WriteTo. The loaded index is
// immediately queryable and maintainable.
func ReadIndex(r io.Reader) (*Index, error) {
	x, err := csc.Read(r)
	if err != nil {
		return nil, err
	}
	return &Index{x: x}, nil
}

// ReadIndexFile loads an index file by path. With useMmap and a v3 file
// (a compressed sharded index, see WithCompression), the label sections
// alias a read-only mapping of the file: the index serves its first
// query after a structural check only, and label bytes page in from disk
// on first touch — the cold-start path for indexes larger than RAM.
// Non-v3 files and platforms without mmap support fall back to a normal
// strict read, so the flag is always safe to pass.
func ReadIndexFile(path string, useMmap bool) (*Index, error) {
	x, err := csc.ReadFile(path, useMmap)
	if err != nil {
		return nil, err
	}
	return &Index{x: x}, nil
}

// TopK maintains a continuously correct top-k ranking of vertices by
// shortest-cycle count under edge updates — the fraud-watchlist loop from
// the paper's introduction. It takes over the index: apply updates through
// the TopK methods, not the Index's.
type TopK struct {
	m *monitor.TopK
}

// WatchTopK wraps an index in a top-k monitor, scoring every vertex once.
func WatchTopK(ix *Index, k int) *TopK {
	return &TopK{m: monitor.New(ix.x, k)}
}

// InsertEdge applies a maintained insertion and refreshes the ranking.
func (t *TopK) InsertEdge(a, b int) error { return t.m.InsertEdge(a, b) }

// DeleteEdge applies a maintained deletion and refreshes the ranking.
func (t *TopK) DeleteEdge(a, b int) error { return t.m.DeleteEdge(a, b) }

// Score returns the current standing of one vertex.
func (t *TopK) Score(v int) CycleResult {
	s := t.m.Score(v)
	if !s.Exists {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: s.Length, Count: s.Count}
}

// Top returns up to k vertices ranked by cycle count (descending), with
// shorter cycles breaking ties.
func (t *TopK) Top() []RankedVertex {
	var out []RankedVertex
	for _, s := range t.m.Top() {
		out = append(out, RankedVertex{
			Vertex: s.Vertex,
			Result: CycleResult{Exists: true, Length: s.Length, Count: s.Count},
		})
	}
	return out
}

// RankedVertex is one row of a TopK ranking.
type RankedVertex struct {
	Vertex int
	Result CycleResult
}

// Engine is the concurrent serving facade over an Index: any number of
// goroutines may query while a single writer goroutine drains a batched
// update mailbox — the same subsystem the cscd daemon serves over HTTP.
// Queries enter cheap reader epochs (a striped RWMutex shard); the writer
// coalesces redundant ops (insert+delete of the same edge cancels,
// duplicate inserts dedupe), applies each batch inside a short grace
// period, and — with WithWAL — appends every applied batch to a
// write-ahead log with periodic snapshots, so a crashed process recovers
// its exact pre-crash labels.
type Engine struct {
	e     *engine.Engine
	ship  *dist.Shipper
	watch *monitor.TopK
	k     int

	// HTTP observability configuration, consumed by the (memoized)
	// Handler. The handler registers its per-route latency histograms into
	// the engine's metrics registry, so it must be built exactly once.
	httpOpts    serve.Options
	handlerOnce sync.Once
	handler     http.Handler
}

// EngineOption configures NewEngine and OpenEngine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	opts        engine.Options
	dir         string
	topK        int
	httpOpts    serve.Options
	replicateTo string
}

// WithWAL enables durability: every applied batch is fsynced to a
// write-ahead log under dir before it mutates the index, with periodic
// full snapshots (see WithSnapshotEvery). If dir already holds a
// snapshot/WAL, NewEngine recovers that state instead of using the given
// index.
func WithWAL(dir string) EngineOption {
	return func(c *engineConfig) { c.dir = dir }
}

// WithTopK attaches a continuously maintained top-k watch, served by
// Engine.Top and Engine.Score. The watch warms by scoring every vertex
// and afterwards rescans only the vertices each batch touched.
func WithTopK(k int) EngineOption {
	return func(c *engineConfig) { c.topK = k }
}

// WithBatch tunes write batching: maxOps caps how many ops one grace
// period applies, and flush bounds how long a partial batch waits for
// more ops (negative: apply as soon as the mailbox drains).
func WithBatch(maxOps int, flush time.Duration) EngineOption {
	return func(c *engineConfig) {
		c.opts.MaxBatch = maxOps
		c.opts.FlushInterval = flush
	}
}

// WithSnapshotEvery sets how many applied batches elapse between full
// snapshots (default 64; a negative value disables periodic snapshots,
// leaving the WAL as the only durability). Only meaningful together
// with WithWAL.
func WithSnapshotEvery(batches int) EngineOption {
	return func(c *engineConfig) { c.opts.SnapshotEvery = batches }
}

// WithMailbox sets the update mailbox capacity (default 4096). A full
// mailbox applies backpressure: InsertEdge/DeleteEdge block.
func WithMailbox(n int) EngineOption {
	return func(c *engineConfig) { c.opts.MailboxSize = n }
}

// WithoutReadCache disables the engine's per-vertex result cache, so
// every CycleCount re-joins the label lists. Answers are identical
// either way; the knob exists for benchmark ablations and to trade the
// cache's 24 bytes per vertex for recomputation on memory-starved
// deployments.
func WithoutReadCache() EngineOption {
	return func(c *engineConfig) { c.opts.NoCache = true }
}

// AdmissionPolicy selects what an enqueue does when the update mailbox
// is full: AdmitBlock waits (bounded by the caller's context), AdmitReject
// fails fast with engine.ErrOverloaded, AdmitShed drops and counts.
type AdmissionPolicy = engine.AdmissionPolicy

// Admission policies for WithAdmission.
const (
	AdmitBlock  = engine.AdmitBlock
	AdmitReject = engine.AdmitReject
	AdmitShed   = engine.AdmitShed
)

// ParseAdmission maps a flag string (block | reject | shed) to a policy.
func ParseAdmission(s string) (AdmissionPolicy, error) { return engine.ParseAdmission(s) }

// WithAdmission sets the engine's full-mailbox admission policy
// (default AdmitBlock: backpressure).
func WithAdmission(p AdmissionPolicy) EngineOption {
	return func(c *engineConfig) { c.opts.Admission = p }
}

// WithWALRetry bounds how many times a failed WAL append is retried
// (with doubling backoff and a rollback of any torn partial write)
// before the engine drops the batch and degrades to read-only mode —
// reads keep serving, updates fail with engine.ErrReadOnly, and a
// successful Snapshot heals the store.
func WithWALRetry(n int) EngineOption {
	return func(c *engineConfig) { c.opts.WALRetry = n }
}

// WithOOBRebuildThreshold moves structural shard rebuilds of at least n
// vertices off the write path: the batch commits its cheap incremental
// work immediately, affected shards keep serving their pre-batch
// answers (listed in EngineStats.Degraded), and the rebuild runs out of
// band and swaps in atomically when done. 0 (the default) keeps every
// rebuild inline.
func WithOOBRebuildThreshold(n int) EngineOption {
	return func(c *engineConfig) { c.opts.OOBRebuildThreshold = n }
}

// WithMetrics enables the engine's observability layer: a metrics
// registry (latency histograms, counters, per-shard gauges) served by
// the Handler's GET /metrics in Prometheus text exposition format, and
// a ring of batch-lifecycle traces served by GET /debug/trace. The
// /stats counters are the same atomic words the registry scrapes, so
// the two surfaces cannot drift. Cache-hit reads execute no
// instrumentation at all; the overhead on cold reads is one clock pair
// per label join.
func WithMetrics() EngineOption {
	return func(c *engineConfig) { c.opts.Metrics = obs.New() }
}

// WithAccessLog writes one JSON line per completed HTTP request
// (timestamp, request id, method, path, matched route, status,
// duration, bytes) to w. Writes are serialized by the handler.
func WithAccessLog(w io.Writer) EngineOption {
	return func(c *engineConfig) { c.httpOpts.AccessLog = w }
}

// WithSlowQueryThreshold flags /cycle reads at or above d: the access
// line is marked slow and carries the queried vertex, and is emitted
// even without WithAccessLog (to stderr). 0 disables.
func WithSlowQueryThreshold(d time.Duration) EngineOption {
	return func(c *engineConfig) { c.httpOpts.SlowQuery = d }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the Handler.
func WithPprof() EngineOption {
	return func(c *engineConfig) { c.httpOpts.Pprof = true }
}

// WithReRanking enables online per-shard hub re-ranking on a sharded
// index: the engine watches per-hub hit counters on the join kernel and,
// every interval, when one shard's query traffic has drifted away from
// its build-time hub order (hit-weighted mean rank past a threshold), it
// recomputes that shard's order from the observed hits and rebuilds it
// through the out-of-band path — readers keep serving the exact current
// answers until the re-ranked shard swaps in atomically. Answers never
// change (the graph didn't); only label shape chases the workload.
// Re-ranking yields to all structural work and is skipped entirely on
// monolithic indexes. EngineStats.ReRanks counts swaps;
// cscd_reranks_total and the per-shard cscd_shard_order gauge expose
// them on /metrics. 0 (the default) disables.
func WithReRanking(interval time.Duration) EngineOption {
	return func(c *engineConfig) { c.opts.ReRankInterval = interval }
}

// WithUpdateWorkers sets how many goroutines the writer uses to apply
// each coalesced batch (0 = all cores, 1 = sequential). The default
// sharded index plans every batch per strongly connected component and
// applies independent per-shard update streams concurrently; answers are
// identical for every worker count, so this is purely a throughput knob.
func WithUpdateWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.opts.UpdateWorkers = n }
}

// WithReplicateTo ships every committed batch's WAL record to the
// follower daemon at baseURL (a cscd started with -follower, or any
// server accepting POST /repl/append in the WAL wire format). Shipping
// runs on the write path after local WAL durability: the happy path is
// synchronous — a batch is on the follower before Flush acknowledges it
// — and degrades to buffered background catch-up while the follower is
// unreachable, with the backlog exposed as the cscd_repl_lag_batches
// gauge. Engine.Close is a shipping barrier: it delivers (or reports)
// the in-flight backlog before the store closes.
func WithReplicateTo(baseURL string) EngineOption {
	return func(c *engineConfig) { c.replicateTo = baseURL }
}

// NewEngine wraps an index in a serving engine and starts its writer.
// The engine owns the index from here on: mutate only through the
// engine's methods. With WithWAL, a non-empty store directory wins over
// ix (the recovered state is served); use OpenEngine to avoid building
// an index that recovery would discard.
func NewEngine(ix *Index, options ...EngineOption) (*Engine, error) {
	return buildEngine(func() (*Index, error) { return ix, nil }, options)
}

// OpenEngine recovers an engine from a WAL directory, calling bootstrap
// only when the store is empty. The WAL directory is dir regardless of
// any WithWAL option.
func OpenEngine(dir string, bootstrap func() (*Index, error), options ...EngineOption) (*Engine, error) {
	options = append(options, WithWAL(dir))
	return buildEngine(bootstrap, options)
}

func buildEngine(bootstrap func() (*Index, error), options []EngineOption) (*Engine, error) {
	var cfg engineConfig
	for _, o := range options {
		o(&cfg)
	}
	var shipper *dist.Shipper
	if cfg.replicateTo != "" {
		shipper = dist.NewShipper(cfg.replicateTo, dist.ShipperOptions{Metrics: cfg.opts.Metrics})
		cfg.opts.Replication = shipper
	}
	var core *engine.Engine
	if cfg.dir != "" {
		var err error
		core, err = engine.Open(cfg.dir, func() (csc.Counter, error) {
			ix, err := bootstrap()
			if err != nil {
				return nil, err
			}
			return ix.x, nil
		}, cfg.opts)
		if err != nil {
			return nil, err
		}
	} else {
		ix, err := bootstrap()
		if err != nil {
			return nil, err
		}
		core = engine.New(ix.x, cfg.opts)
	}
	e := &Engine{e: core, ship: shipper, k: cfg.topK, httpOpts: cfg.httpOpts}
	if cfg.topK > 0 {
		e.watch = core.WatchTopK(cfg.topK)
	}
	return e, nil
}

// ReplicationLag reports how many committed batches the follower has not
// yet acknowledged (always 0 without WithReplicateTo).
func (e *Engine) ReplicationLag() uint64 {
	if e.ship == nil {
		return 0
	}
	return e.ship.Lag()
}

// Follower is the receiving end of WAL shipping: a store directory of
// its own that replays every shipped batch (WAL-append before apply, so
// its durable state is always a replayable prefix), snapshots
// periodically, and serves flagged stale reads meanwhile. Promote — or a
// router's POST /repl/promote — replays it to tip through the standard
// engine recovery path and swaps the full serving surface in.
type Follower struct {
	f  *dist.Follower
	fs *dist.FollowerServer
	// promoteOpts configures the engine a promotion opens.
	promoteOpts engine.Options
}

// OpenFollower opens (or recovers) a replication follower over dir.
// bootstrap must build the same initial index as the primary's bootstrap
// — shipped WAL records are deltas against it. The EngineOptions
// configure the follower's snapshot cadence and metrics now, and the
// promoted engine later.
func OpenFollower(dir string, bootstrap func() (*Index, error), options ...EngineOption) (*Follower, error) {
	var cfg engineConfig
	for _, o := range options {
		o(&cfg)
	}
	boot := func() (csc.Counter, error) {
		ix, err := bootstrap()
		if err != nil {
			return nil, err
		}
		return ix.x, nil
	}
	f, err := dist.OpenFollower(dir, boot, dist.FollowerOptions{
		SnapshotEvery: cfg.opts.SnapshotEvery,
		Metrics:       cfg.opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Follower{
		f:           f,
		fs:          dist.NewFollowerServer(f, cfg.opts, cfg.httpOpts, cfg.opts.Metrics),
		promoteOpts: cfg.opts,
	}, nil
}

// Handler returns the follower's HTTP surface: POST /repl/append,
// GET /repl/status, POST /repl/promote, stale GET /cycle/{v}, /healthz,
// /stats, and /metrics. After promotion everything but /repl/* is served
// by the promoted engine's full handler.
func (f *Follower) Handler() http.Handler { return f.fs }

// Seq reports the sequence number the follower has replayed through.
func (f *Follower) Seq() uint64 { return f.f.Seq() }

// Promoted reports whether this follower has been promoted to primary.
func (f *Follower) Promoted() bool { return f.f.Promoted() }

// Promote replays the follower to its durable tip and returns only when
// the promoted engine is serving. Idempotent.
func (f *Follower) Promote() error {
	_, err := f.f.Promote(f.promoteOpts)
	return err
}

// Close shuts the follower (or its promoted engine) down.
func (f *Follower) Close() error { return f.f.Close() }

// CycleCount answers SCCnt(v) concurrently with updates. Out-of-range
// vertices report no cycle. Repeat reads of a vertex no batch has
// touched since are O(1): they come from the engine's epoch-tagged
// result cache, which batch commits expire for exactly the vertices
// whose labels changed.
func (e *Engine) CycleCount(v int) CycleResult {
	l, c := e.e.CycleCount(v)
	if l == bfscount.NoCycle {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: l, Count: c}
}

// CycleCountBounded is CycleCount restricted to cycle lengths ≤ maxLen
// (the /cycle/{v}?maxlen=L query), served from the cache on a hit and
// by the bounded join kernel on a miss.
func (e *Engine) CycleCountBounded(v, maxLen int) CycleResult {
	l, c := e.e.CycleCountBounded(v, maxLen)
	if l == bfscount.NoCycle {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: l, Count: c}
}

// InsertEdge enqueues an edge insertion. It returns once the op is
// mailed, not once it is applied — call Flush for read-your-writes.
// Inserting an edge that already exists is accepted and coalesced away.
func (e *Engine) InsertEdge(a, b int) error { return e.e.Insert(a, b) }

// DeleteEdge enqueues an edge deletion, with the same asynchrony and
// coalescing as InsertEdge.
func (e *Engine) DeleteEdge(a, b int) error { return e.e.Delete(a, b) }

// Flush blocks until everything enqueued before the call is applied and
// queryable (and WAL-durable, with WithWAL).
func (e *Engine) Flush() { e.e.Flush() }

// Snapshot flushes and writes a full snapshot, truncating the WAL.
func (e *Engine) Snapshot() error { return e.e.Snapshot() }

// Close drains the mailbox, applies what remains, syncs the store, and
// stops the writer. The engine cannot be reused afterwards.
func (e *Engine) Close() error { return e.e.Close() }

// NumVertices returns the (fixed) number of vertices served.
func (e *Engine) NumVertices() int { return e.e.NumVertices() }

// Top returns the current top-k ranking (empty without WithTopK).
func (e *Engine) Top() []RankedVertex {
	if e.watch == nil {
		return nil
	}
	var out []RankedVertex
	for _, s := range e.watch.Top() {
		out = append(out, RankedVertex{
			Vertex: s.Vertex,
			Result: CycleResult{Exists: true, Length: s.Length, Count: s.Count},
		})
	}
	return out
}

// Score returns the watched standing of one vertex (zero without
// WithTopK).
func (e *Engine) Score(v int) CycleResult {
	if e.watch == nil {
		return CycleResult{}
	}
	s := e.watch.Score(v)
	if !s.Exists {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: s.Length, Count: s.Count}
}

// EngineStats is a point-in-time counter snapshot of a serving engine.
type EngineStats struct {
	// Vertices and Edges describe the served graph; Entries and
	// LabelBytes the label footprint.
	Vertices, Edges, Entries, LabelBytes int
	// Queries counts CycleCount calls and CacheHits how many were served
	// from the result cache without a label join; OpsEnqueued/Applied/
	// Coalesced/Rejected track the mailbox; Batches and Seq count applied
	// batches; Snapshots and WALBytes describe the store.
	Queries, CacheHits, OpsEnqueued, OpsApplied, OpsCoalesced, OpsRejected uint64
	Batches, Seq, Snapshots                                                uint64
	WALBytes                                                               int64
	// QueueDepth/MailboxCap describe writer saturation; OpsShed and
	// OpsOverload count admission-policy drops and rejections.
	QueueDepth, MailboxCap int
	OpsShed, OpsOverload   uint64
	// WALRetries counts retried WAL appends; ReadOnly reports the
	// durability-lost degraded mode. Degraded lists shard slots serving
	// stale answers while an out-of-band rebuild is pending; OOBRebuilds
	// and OOBSuperseded count completed and discarded background rebuilds.
	WALRetries                 uint64
	ReadOnly                   bool
	Degraded                   []int
	OOBRebuilds, OOBSuperseded uint64
	// ReRanks counts online hub re-rank swaps (see WithReRanking).
	ReRanks uint64
}

// Stats snapshots the engine counters; safe concurrently with updates.
func (e *Engine) Stats() EngineStats {
	s := e.e.Stats()
	return EngineStats{
		Vertices: s.Vertices, Edges: s.Edges, Entries: s.Entries, LabelBytes: s.LabelBytes,
		Queries: s.Queries, CacheHits: s.CacheHits, OpsEnqueued: s.OpsEnqueued, OpsApplied: s.OpsApplied,
		OpsCoalesced: s.OpsCoalesced, OpsRejected: s.OpsRejected,
		Batches: s.Batches, Seq: s.Seq, Snapshots: s.Snapshots, WALBytes: s.WALBytes,
		QueueDepth: s.QueueDepth, MailboxCap: s.MailboxCap,
		OpsShed: s.OpsShed, OpsOverload: s.OpsOverload,
		WALRetries: s.WALRetries, ReadOnly: s.ReadOnly, Degraded: s.Degraded,
		OOBRebuilds: s.OOBRebuilds, OOBSuperseded: s.OOBSuperseded,
		ReRanks: s.ReRanks,
	}
}

// WaitRebuilds flushes and blocks until no out-of-band rebuild is
// pending (only meaningful with WithOOBRebuildThreshold): afterwards
// every shard serves fresh answers.
func (e *Engine) WaitRebuilds() error { return e.e.WaitRebuilds() }

// Err reports the first durability error, if any. After one the engine
// serves reads only: updates fail with engine.ErrReadOnly until a
// successful Snapshot heals the store.
func (e *Engine) Err() error { return e.e.Err() }

// WriteTo flushes pending batches and serializes the served index (the
// same format as Index.WriteTo) without blocking concurrent readers.
func (e *Engine) WriteTo(w io.Writer) (int64, error) { return e.e.WriteTo(w) }

// Handler returns the engine's HTTP+JSON API — the same surface the cscd
// daemon listens on (GET /cycle/{v}, GET /top, POST and DELETE /edges,
// GET /stats, GET /healthz, plus GET /metrics and GET /debug/trace with
// WithMetrics; see internal/serve for the wire format). The handler is
// built once and memoized: repeat calls return the same handler.
func (e *Engine) Handler() http.Handler {
	e.handlerOnce.Do(func() {
		e.handler = serve.NewHandler(e.e, e.watch, e.k, e.httpOpts)
	})
	return e.handler
}

// CycleCountBFS answers SCCnt(v) without an index by the paper's BFS
// baseline (Algorithm 1) in O(n+m) time. Useful for one-off queries or
// cross-checking.
func CycleCountBFS(g *Graph, v int) CycleResult {
	l, c := bfscount.CycleCount(g, v)
	if l == bfscount.NoCycle {
		return CycleResult{}
	}
	return CycleResult{Exists: true, Length: l, Count: c}
}
