package cyclehub

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI), operating on the tiny-scale dataset analogs so `go test -bench=.`
// finishes quickly. The full-scale numbers EXPERIMENTS.md records come
// from `go run ./cmd/cscbench -scale small|full`, which runs the same
// harness code (internal/exp).

import (
	"testing"

	"repro/internal/bfscount"
	"repro/internal/cluster"
	"repro/internal/csc"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hpspc"
	"repro/internal/order"
	"repro/internal/pll"
)

// BenchmarkTable4Stats regenerates every dataset analog (Table IV).
func BenchmarkTable4Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Table4(exp.Tiny); len(rows) != 9 {
			b.Fatal("registry broken")
		}
	}
}

// BenchmarkFig9Build measures index construction per dataset for both
// algorithms (Figure 9a); sizes (Figure 9b) are reported as custom
// metrics.
func BenchmarkFig9Build(b *testing.B) {
	for _, d := range exp.Datasets() {
		g := d.Build(exp.Tiny)
		ord := order.ByDegree(g)
		b.Run(d.Name+"/HP-SPC", func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				h, _ := hpspc.Build(g.Clone(), ord, pll.Redundancy)
				bytes = h.Bytes()
			}
			b.ReportMetric(float64(bytes), "index-bytes")
		})
		b.Run(d.Name+"/CSC", func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				x, _ := csc.Build(g.Clone(), ord, csc.Options{})
				bytes = x.ReducedBytes()
			}
			b.ReportMetric(float64(bytes), "reduced-index-bytes")
		})
	}
}

// fig10Fixture builds the per-cluster query workload for one dataset.
type fig10Fixture struct {
	g        *graph.Digraph
	hp       *hpspc.Index
	x        *csc.Index
	clusters [5][]int
}

func newFig10Fixture(b *testing.B, name string) *fig10Fixture {
	b.Helper()
	d, err := exp.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Build(exp.Tiny)
	ord := order.ByDegree(g)
	hp, _ := hpspc.Build(g.Clone(), ord, pll.Redundancy)
	x, _ := csc.Build(g.Clone(), ord, csc.Options{})
	vs := make([]int, g.NumVertices())
	for i := range vs {
		vs[i] = i
	}
	return &fig10Fixture{g: g, hp: hp, x: x, clusters: cluster.Vertices(g, vs)}
}

// BenchmarkFig10Query measures SCCnt per algorithm per degree cluster
// (Figure 10) on the skewed EME analog, where the clusters differ most.
func BenchmarkFig10Query(b *testing.B) {
	f := newFig10Fixture(b, "EME")
	for ci, cvs := range f.clusters {
		if len(cvs) == 0 {
			continue
		}
		name := cluster.Names[ci]
		b.Run(name+"/BFS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bfscount.CycleCount(f.g, cvs[i%len(cvs)])
			}
		})
		b.Run(name+"/HP-SPC", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.hp.CycleCount(cvs[i%len(cvs)])
			}
		})
		b.Run(name+"/CSC", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.x.CycleCount(cvs[i%len(cvs)])
			}
		})
	}
}

// BenchmarkFig11Insert measures one maintained edge insertion (each
// iteration inserts a fresh edge and removes it again untimed is not
// possible inside testing.B, so the pair is measured; the paper's
// insertion-only numbers come from cscbench -exp fig11).
func BenchmarkFig11Insert(b *testing.B) {
	for _, strat := range []pll.Strategy{pll.Redundancy, pll.Minimality} {
		b.Run(strat.String(), func(b *testing.B) {
			d, _ := exp.DatasetByName("G04")
			g := d.Build(exp.Tiny)
			x, _ := csc.Build(g, order.ByDegree(g), csc.Options{Strategy: strat})
			r := newEdgePicker(g, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, v := r.absent()
				if _, err := x.InsertEdge(u, v); err != nil {
					b.Fatal(err)
				}
				if _, err := x.DeleteEdge(u, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12Delete measures one maintained edge deletion plus the
// insertion restoring it (Figure 12's decremental costs dominate the
// pair by an order of magnitude).
func BenchmarkFig12Delete(b *testing.B) {
	d, _ := exp.DatasetByName("G04")
	g := d.Build(exp.Tiny)
	x, _ := csc.Build(g, order.ByDegree(g), csc.Options{})
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if _, err := x.DeleteEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
		if _, err := x.InsertEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudy runs the full Figure 13 pipeline: plant rings, build,
// rank.
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.CaseStudy(exp.Tiny)
		if !res.Recovered {
			b.Fatal("criminals not recovered")
		}
	}
}

// BenchmarkAblationConstruction compares the couple-vertex-skipping
// construction against the generic engine (DESIGN E12).
func BenchmarkAblationConstruction(b *testing.B) {
	d, _ := exp.DatasetByName("WKT")
	g := d.Build(exp.Tiny)
	ord := order.ByDegree(g)
	b.Run("skipping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csc.Build(g.Clone(), ord, csc.Options{})
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csc.Build(g.Clone(), ord, csc.Options{GenericConstruction: true})
		}
	})
}

// BenchmarkScalingBuild tracks label growth with graph size (DESIGN E11).
func BenchmarkScalingBuild(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		g := gen.ErdosRenyi(gen.Config{N: n, M: 4 * n, Seed: int64(n)})
		ord := order.ByDegree(g)
		b.Run(sizeName(n), func(b *testing.B) {
			var entries int
			for i := 0; i < b.N; i++ {
				x, _ := csc.Build(g.Clone(), ord, csc.Options{})
				entries = x.EntryCount()
			}
			b.ReportMetric(float64(entries)/float64(2*n), "entries/vertex")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return "n=" + itoa(n/1000) + "k"
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// edgePicker deterministically proposes absent edges for update benches.
type edgePicker struct {
	g    *graph.Digraph
	seed int64
	k    int64
}

func newEdgePicker(g *graph.Digraph, seed int64) *edgePicker {
	return &edgePicker{g: g, seed: seed}
}

func (p *edgePicker) absent() (int, int) {
	n := int64(p.g.NumVertices())
	for {
		p.k++
		u := int((p.seed*2654435761 + p.k*40503) % n)
		v := int((p.seed*97 + p.k*69621) % n)
		if u < 0 {
			u += int(n)
		}
		if v < 0 {
			v += int(n)
		}
		if u != v && !p.g.HasEdge(u, v) {
			return u, v
		}
	}
}
