package cyclehub

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func buildTriangle(t *testing.T) *Index {
	t.Helper()
	g, err := GraphFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return BuildIndex(g)
}

func TestQuickstartFlow(t *testing.T) {
	idx := buildTriangle(t)
	r := idx.CycleCount(0)
	if !r.Exists || r.Length != 3 || r.Count != 1 {
		t.Fatalf("CycleCount(0) = %+v", r)
	}
	if r := idx.CycleCount(3); r.Exists {
		t.Fatalf("vertex 3 should be cycle-free: %+v", r)
	}
	if err := idx.InsertEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	// The new cycle through 3 is 3→0→1→2→3.
	if r := idx.CycleCount(3); !r.Exists || r.Length != 4 || r.Count != 1 {
		t.Fatalf("after insert: %+v", r)
	}
	if err := idx.DeleteEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if r := idx.CycleCount(3); r.Exists {
		t.Fatalf("after delete: %+v", r)
	}
}

func TestMatchesBFSBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	n := 40
	g := NewGraph(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	ref := g.Clone()
	idx := BuildIndex(g)
	for v := 0; v < n; v++ {
		if got, want := idx.CycleCount(v), CycleCountBFS(ref, v); got != want {
			t.Fatalf("vertex %d: index %+v, BFS %+v", v, got, want)
		}
	}
}

func TestMinimalityOption(t *testing.T) {
	g, _ := GraphFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	idx := BuildIndex(g, WithMinimality())
	if r := idx.CycleCount(1); !r.Exists || r.Length != 3 {
		t.Fatalf("minimality index broken: %+v", r)
	}
}

func TestStats(t *testing.T) {
	idx := buildTriangle(t)
	s := idx.Stats()
	if s.Entries == 0 || s.Bytes != 8*s.Entries || s.ReducedBytes >= s.Bytes {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	idx := buildTriangle(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if got.CycleCount(v) != idx.CycleCount(v) {
			t.Fatalf("vertex %d differs after roundtrip", v)
		}
	}
	if got.Graph().NumEdges() != idx.Graph().NumEdges() {
		t.Fatal("graph lost in roundtrip")
	}
	// Loaded index stays dynamic.
	if err := got.InsertEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if r := got.CycleCount(3); !r.Exists {
		t.Fatal("loaded index not maintainable")
	}
}

func TestReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestCycleCountAllParallel(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 200
	g := NewGraph(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	idx := BuildIndex(g)
	seq := idx.CycleCountAll(1)
	par := idx.CycleCountAll(8)
	if len(seq) != n || len(par) != n {
		t.Fatal("wrong result length")
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("vertex %d: sequential %+v != parallel %+v", v, seq[v], par[v])
		}
	}
}

func TestVertexGrowthAndDetach(t *testing.T) {
	g, _ := GraphFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	idx := BuildIndex(g)
	v, err := idx.AddVertex()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(2, v); err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(v, 0); err != nil {
		t.Fatal(err)
	}
	if r := idx.CycleCount(v); !r.Exists || r.Length != 4 {
		t.Fatalf("new vertex cycle: %+v", r)
	}
	removed, err := idx.DetachVertex(v)
	if err != nil || removed != 2 {
		t.Fatalf("DetachVertex = (%d, %v)", removed, err)
	}
	if r := idx.CycleCount(v); r.Exists {
		t.Fatalf("detached vertex still cyclic: %+v", r)
	}
	if r := idx.CycleCount(0); !r.Exists || r.Length != 3 {
		t.Fatalf("triangle broken by detach: %+v", r)
	}
}

func TestWatchTopK(t *testing.T) {
	g, _ := GraphFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}})
	w := WatchTopK(BuildIndex(g), 3)
	top := w.Top()
	if len(top) != 3 || top[0].Result.Length != 3 {
		t.Fatalf("initial top = %v", top)
	}
	if err := w.InsertEdge(4, 2); err != nil {
		t.Fatal(err)
	}
	if s := w.Score(3); !s.Exists || s.Length != 3 {
		t.Fatalf("vertex 3 after closing 2→3→4→2: %+v", s)
	}
	if err := w.DeleteEdge(4, 2); err != nil {
		t.Fatal(err)
	}
	if s := w.Score(3); s.Exists {
		t.Fatalf("vertex 3 after reopening: %+v", s)
	}
}

func TestUpdateErrorsSurface(t *testing.T) {
	idx := buildTriangle(t)
	if err := idx.InsertEdge(0, 1); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := idx.DeleteEdge(1, 0); err == nil {
		t.Error("missing delete accepted")
	}
}

// Workers beyond the vertex count are clamped — a 3-vertex graph queried
// with 64 workers must not misbehave (and must not spawn 61 idle
// goroutines, which the clamp in csc.CycleCountAll guarantees).
func TestCycleCountAllClampsWorkers(t *testing.T) {
	idx := buildTriangle(t)
	res := idx.CycleCountAll(64)
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	for v := 0; v < 3; v++ {
		if !res[v].Exists || res[v].Length != 3 {
			t.Fatalf("vertex %d: %+v", v, res[v])
		}
	}
	if res[3].Exists {
		t.Fatalf("vertex 3 off-cycle: %+v", res[3])
	}
}

func TestEngineFacade(t *testing.T) {
	g, _ := GraphFromEdges(5, [][2]int{{0, 1}})
	e, err := NewEngine(BuildIndex(g), WithTopK(2), WithBatch(8, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for _, p := range [][2]int{{1, 2}, {2, 0}, {0, 1}} { // last one is redundant
		if err := e.InsertEdge(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	if r := e.CycleCount(0); !r.Exists || r.Length != 3 {
		t.Fatalf("CycleCount(0) = %+v", r)
	}
	if r := e.CycleCount(99); r.Exists {
		t.Fatalf("out-of-range = %+v", r)
	}
	top := e.Top()
	if len(top) != 2 || !top[0].Result.Exists {
		t.Fatalf("Top = %+v", top)
	}
	if s := e.Score(0); !s.Exists || s.Length != 3 {
		t.Fatalf("Score(0) = %+v", s)
	}
	if s := e.Score(99); s.Exists { // out of range: no panic, no score
		t.Fatalf("Score(99) = %+v", s)
	}
	st := e.Stats()
	if st.OpsEnqueued != 3 || st.OpsApplied != 2 || st.OpsCoalesced != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := e.DeleteEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if r := e.CycleCount(0); r.Exists {
		t.Fatalf("cycle should be broken: %+v", r)
	}
}

// The read-path facade: bounded queries screen by length, repeat reads
// hit the result cache, and WithoutReadCache turns it off.
func TestEngineReadPathFacade(t *testing.T) {
	build := func() *Index {
		g, _ := GraphFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}})
		return BuildIndex(g)
	}
	e, err := NewEngine(build(), WithBatch(8, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if r := e.CycleCountBounded(0, 2); r.Exists {
		t.Fatalf("maxlen=2 should screen the triangle: %+v", r)
	}
	if r := e.CycleCountBounded(0, 3); !r.Exists || r.Length != 3 || r.Count != 1 {
		t.Fatalf("maxlen=3 = %+v", r)
	}
	e.CycleCount(1)
	e.CycleCount(1)
	if st := e.Stats(); st.CacheHits == 0 {
		t.Fatalf("repeat read never hit the cache: %+v", st)
	}

	nc, err := NewEngine(build(), WithoutReadCache(), WithBatch(8, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.CycleCount(1)
	if r := nc.CycleCount(1); !r.Exists || r.Length != 3 {
		t.Fatalf("uncached read = %+v", r)
	}
	if st := nc.Stats(); st.CacheHits != 0 {
		t.Fatalf("WithoutReadCache still hit: %+v", st)
	}

	idx := build()
	if r := idx.CycleCountBounded(0, 2); r.Exists {
		t.Fatalf("index maxlen=2 should screen the triangle: %+v", r)
	}
	if r := idx.CycleCountBounded(0, 3); !r.Exists || r.Length != 3 {
		t.Fatalf("index maxlen=3 = %+v", r)
	}
	// A huge client-supplied bound must behave as unbounded, not wrap
	// negative through the 2L-1 distance mapping.
	for _, bound := range []int{1<<62 + 1, math.MaxInt} {
		if r := idx.CycleCountBounded(0, bound); !r.Exists || r.Length != 3 || r.Count != 1 {
			t.Fatalf("index maxlen=%d = %+v, want the triangle", bound, r)
		}
	}
}

func TestEngineFacadeWALRecovery(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*Index, error) {
		g, _ := GraphFromEdges(4, [][2]int{{0, 1}})
		return BuildIndex(g), nil
	}
	e, err := OpenEngine(dir, boot, WithBatch(4, -1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int{{1, 2}, {2, 0}} {
		if err := e.InsertEdge(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	var before bytes.Buffer
	if _, err := e.WriteTo(&before); err != nil {
		t.Fatal(err)
	}
	// "Kill" (Close persists nothing new — no final snapshot, per-batch
	// WAL fsyncs — it only releases the store lock, as process death
	// would), then reopen: bootstrap runs again (no snapshot yet) and the
	// WAL replays on top, so bytes match the pre-kill engine.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := OpenEngine(dir, boot, WithBatch(4, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	var after bytes.Buffer
	if _, err := e2.WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("recovered engine serialization differs from pre-kill state")
	}
	if r := e2.CycleCount(1); !r.Exists || r.Length != 3 {
		t.Fatalf("recovered CycleCount(1) = %+v", r)
	}
	// HTTP handler mounts over the facade.
	if e2.Handler() == nil {
		t.Fatal("nil handler")
	}
}

// The default index is SCC-sharded; WithMonolithic builds the single
// whole-graph labeling. Both must answer identically and both serialized
// forms must load through ReadIndex.
func TestMonolithicOptionAgrees(t *testing.T) {
	n := 60
	mk := func() *Graph {
		g := NewGraph(n)
		rr := rand.New(rand.NewSource(77))
		for i := 0; i < 2*n; i++ {
			u, v := rr.Intn(n), rr.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		return g
	}
	sharded := BuildIndex(mk())
	mono := BuildIndex(mk(), WithMonolithic())
	if sharded.Stats().Bytes > mono.Stats().Bytes {
		t.Fatalf("sharded index larger than monolithic: %d > %d",
			sharded.Stats().Bytes, mono.Stats().Bytes)
	}
	for v := 0; v < n; v++ {
		if sharded.CycleCount(v) != mono.CycleCount(v) {
			t.Fatalf("vertex %d: sharded %+v != monolithic %+v",
				v, sharded.CycleCount(v), mono.CycleCount(v))
		}
	}
	for _, ix := range []*Index{sharded, mono} {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if got.CycleCount(v) != ix.CycleCount(v) {
				t.Fatalf("vertex %d differs after roundtrip", v)
			}
		}
	}
}

// An engine over the sharded default must absorb updates that merge and
// split components while serving, and recover them from the WAL.
func TestEngineShardedMergeSplitRecovery(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*Index, error) {
		g, _ := GraphFromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
		return BuildIndex(g), nil
	}
	e, err := OpenEngine(dir, boot, WithBatch(4, -1))
	if err != nil {
		t.Fatal(err)
	}
	// 2→0 closes {0,1,2}; 5→3 closes {3,4,5}; 2→3 plus 5→0 merges both.
	for _, p := range [][2]int{{2, 0}, {5, 3}, {2, 3}, {5, 0}} {
		if err := e.InsertEdge(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	if r := e.CycleCount(0); !r.Exists || r.Length != 3 {
		t.Fatalf("CycleCount(0) = %+v", r)
	}
	if r := e.CycleCount(3); !r.Exists || r.Length != 3 {
		t.Fatalf("CycleCount(3) = %+v", r)
	}
	var before bytes.Buffer
	if _, err := e.WriteTo(&before); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := OpenEngine(dir, boot, WithBatch(4, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	var after bytes.Buffer
	if _, err := e2.WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("recovered sharded engine state differs from pre-kill state")
	}
	// Splitting delete after recovery: break the merged component apart.
	if err := e2.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	e2.Flush()
	if r := e2.CycleCount(0); !r.Exists || r.Length != 3 {
		t.Fatalf("after split: CycleCount(0) = %+v", r)
	}
	if r := e2.CycleCount(3); !r.Exists || r.Length != 3 {
		t.Fatalf("after split: CycleCount(3) = %+v", r)
	}
}

func TestApplyBatchFacade(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		idx := buildTriangle(t)
		// One batch: flap the triangle edge (nets to nothing) and close
		// the 4-cycle through vertex 3.
		ops := []EdgeOp{
			{Delete: true, A: 0, B: 1},
			{A: 0, B: 1},
			{A: 3, B: 0},
		}
		if err := idx.ApplyBatch(ops, workers); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if r := idx.CycleCount(3); !r.Exists || r.Length != 4 || r.Count != 1 {
			t.Fatalf("workers %d: after batch: %+v", workers, r)
		}
		// An invalid batch is rejected whole: nothing applies.
		err := idx.ApplyBatch([]EdgeOp{{A: 1, B: 3}, {A: 1, B: 3}}, workers)
		if err == nil {
			t.Fatalf("workers %d: duplicate insert accepted", workers)
		}
		if idx.Graph().HasEdge(1, 3) {
			t.Fatalf("workers %d: rejected batch mutated the graph", workers)
		}
		if err := idx.ApplyBatch([]EdgeOp{{A: 0, B: -1}}, workers); err == nil {
			t.Fatalf("workers %d: out-of-range vertex accepted", workers)
		}
	}
}

func TestEngineWithUpdateWorkers(t *testing.T) {
	g, err := GraphFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(BuildIndex(g), WithUpdateWorkers(4), WithBatch(64, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Touch both shards in one logical burst; answers must match the
	// sequential semantics regardless of the worker pool.
	for _, e := range [][2]int{{2, 3}, {5, 0}} {
		if err := eng.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	if r := eng.CycleCount(0); !r.Exists || r.Length != 3 {
		t.Fatalf("vertex 0 after merge: %+v", r)
	}
	if r := eng.CycleCount(3); !r.Exists {
		t.Fatalf("vertex 3 after merge: %+v", r)
	}
	st := eng.Stats()
	if st.OpsApplied == 0 || st.OpsRejected != 0 {
		t.Fatalf("stats after batch: %+v", st)
	}
}

func TestOrderingOptions(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	n := 30
	g := NewGraph(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	for _, s := range []Ordering{OrderDegree, OrderID, OrderRandom, OrderBetweenness, OrderCoverage} {
		for _, mono := range []bool{false, true} {
			opts := []Option{WithOrdering(s), WithOrderingSeed(9)}
			if mono {
				opts = append(opts, WithMonolithic())
			}
			idx := BuildIndex(g.Clone(), opts...)
			for v := 0; v < n; v++ {
				if got, want := idx.CycleCount(v), CycleCountBFS(g, v); got != want {
					t.Fatalf("%v mono=%v vertex %d: index %+v, BFS %+v", s, mono, v, got, want)
				}
			}
		}
	}
	if _, err := ParseOrdering("coverage"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOrdering("bogus"); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}

func TestReRankingOption(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	n := 24
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		_ = g.AddEdge(v, (v+1)%n)
	}
	for i := 0; i < 2*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	ref := g.Clone()
	eng, err := NewEngine(BuildIndex(g), WithReRanking(time.Millisecond), WithoutReadCache(), WithBatch(8, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Feed the drift signal; whether or not a re-rank fires within the
	// window (thresholds are conservative by default), answers never move.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for v := 0; v < n; v++ {
			if got, want := eng.CycleCount(v), CycleCountBFS(ref, v); got != want {
				t.Fatalf("vertex %d: engine %+v, BFS %+v", v, got, want)
			}
		}
	}
	if err := eng.WaitRebuilds(); err != nil {
		t.Fatal(err)
	}
	eng.Stats() // ReRanks is a valid field whether or not one fired
}
