package cyclehub

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func buildTriangle(t *testing.T) *Index {
	t.Helper()
	g, err := GraphFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return BuildIndex(g)
}

func TestQuickstartFlow(t *testing.T) {
	idx := buildTriangle(t)
	r := idx.CycleCount(0)
	if !r.Exists || r.Length != 3 || r.Count != 1 {
		t.Fatalf("CycleCount(0) = %+v", r)
	}
	if r := idx.CycleCount(3); r.Exists {
		t.Fatalf("vertex 3 should be cycle-free: %+v", r)
	}
	if err := idx.InsertEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	// The new cycle through 3 is 3→0→1→2→3.
	if r := idx.CycleCount(3); !r.Exists || r.Length != 4 || r.Count != 1 {
		t.Fatalf("after insert: %+v", r)
	}
	if err := idx.DeleteEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if r := idx.CycleCount(3); r.Exists {
		t.Fatalf("after delete: %+v", r)
	}
}

func TestMatchesBFSBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	n := 40
	g := NewGraph(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	ref := g.Clone()
	idx := BuildIndex(g)
	for v := 0; v < n; v++ {
		if got, want := idx.CycleCount(v), CycleCountBFS(ref, v); got != want {
			t.Fatalf("vertex %d: index %+v, BFS %+v", v, got, want)
		}
	}
}

func TestMinimalityOption(t *testing.T) {
	g, _ := GraphFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	idx := BuildIndex(g, WithMinimality())
	if r := idx.CycleCount(1); !r.Exists || r.Length != 3 {
		t.Fatalf("minimality index broken: %+v", r)
	}
}

func TestStats(t *testing.T) {
	idx := buildTriangle(t)
	s := idx.Stats()
	if s.Entries == 0 || s.Bytes != 8*s.Entries || s.ReducedBytes >= s.Bytes {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	idx := buildTriangle(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if got.CycleCount(v) != idx.CycleCount(v) {
			t.Fatalf("vertex %d differs after roundtrip", v)
		}
	}
	if got.Graph().NumEdges() != idx.Graph().NumEdges() {
		t.Fatal("graph lost in roundtrip")
	}
	// Loaded index stays dynamic.
	if err := got.InsertEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if r := got.CycleCount(3); !r.Exists {
		t.Fatal("loaded index not maintainable")
	}
}

func TestReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestCycleCountAllParallel(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 200
	g := NewGraph(n)
	for i := 0; i < 3*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddEdge(u, v)
		}
	}
	idx := BuildIndex(g)
	seq := idx.CycleCountAll(1)
	par := idx.CycleCountAll(8)
	if len(seq) != n || len(par) != n {
		t.Fatal("wrong result length")
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("vertex %d: sequential %+v != parallel %+v", v, seq[v], par[v])
		}
	}
}

func TestVertexGrowthAndDetach(t *testing.T) {
	g, _ := GraphFromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	idx := BuildIndex(g)
	v, err := idx.AddVertex()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(2, v); err != nil {
		t.Fatal(err)
	}
	if err := idx.InsertEdge(v, 0); err != nil {
		t.Fatal(err)
	}
	if r := idx.CycleCount(v); !r.Exists || r.Length != 4 {
		t.Fatalf("new vertex cycle: %+v", r)
	}
	removed, err := idx.DetachVertex(v)
	if err != nil || removed != 2 {
		t.Fatalf("DetachVertex = (%d, %v)", removed, err)
	}
	if r := idx.CycleCount(v); r.Exists {
		t.Fatalf("detached vertex still cyclic: %+v", r)
	}
	if r := idx.CycleCount(0); !r.Exists || r.Length != 3 {
		t.Fatalf("triangle broken by detach: %+v", r)
	}
}

func TestWatchTopK(t *testing.T) {
	g, _ := GraphFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}})
	w := WatchTopK(BuildIndex(g), 3)
	top := w.Top()
	if len(top) != 3 || top[0].Result.Length != 3 {
		t.Fatalf("initial top = %v", top)
	}
	if err := w.InsertEdge(4, 2); err != nil {
		t.Fatal(err)
	}
	if s := w.Score(3); !s.Exists || s.Length != 3 {
		t.Fatalf("vertex 3 after closing 2→3→4→2: %+v", s)
	}
	if err := w.DeleteEdge(4, 2); err != nil {
		t.Fatal(err)
	}
	if s := w.Score(3); s.Exists {
		t.Fatalf("vertex 3 after reopening: %+v", s)
	}
}

func TestUpdateErrorsSurface(t *testing.T) {
	idx := buildTriangle(t)
	if err := idx.InsertEdge(0, 1); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := idx.DeleteEdge(1, 0); err == nil {
		t.Error("missing delete accepted")
	}
}
